// Policy face-off: run every policy (including the extensions) on one
// workload and print the full QoS/utilisation picture — a one-screen
// summary of what each allocation strategy trades away.
//
//   ./policy_faceoff [--hp milc1] [--be lbm1] [--cores 10] [--slo 0.9]
#include <iostream>

#include "harness/consolidation.hpp"
#include "harness/solo.hpp"
#include "metrics/metrics.hpp"
#include "policy/factory.hpp"
#include "sim/core/catalog.hpp"
#include "util/cli.hpp"
#include "util/csv.hpp"
#include "util/table.hpp"

static int run(int argc, char** argv) {
  using namespace dicer;

  const util::CliArgs args(argc, argv);
  const std::string hp_name = args.get_or("hp", "milc1");
  const std::string be_name = args.get_or("be", "lbm1");
  const auto cores = static_cast<unsigned>(args.get_int("cores", 10));
  const double slo = args.get_double("slo", 0.90);

  const auto& catalog = sim::default_catalog();
  const auto& hp = catalog.by_name(hp_name);
  const auto& be = catalog.by_name(be_name);

  harness::ConsolidationConfig config;
  config.cores_used = cores;
  config.enable_mba = true;  // let DICER+MBA play too
  const double hp_alone =
      harness::solo_steady_state(hp, config.machine.llc.ways, config.machine)
          .ipc;
  const double be_alone =
      harness::solo_steady_state(be, config.machine.llc.ways, config.machine)
          .ipc;

  std::cout << "Face-off: HP " << hp_name << " ("
            << to_string(hp.app_class) << ") vs " << (cores - 1) << "x "
            << be_name << " (" << to_string(be.app_class) << "), SLO "
            << slo * 100 << "%\n\n";

  util::TextTable table;
  table.set_header({"policy", "HP norm", "SLO?", "BE norm", "EFU",
                    "SUCI(l=1)", "link rho"});
  for (const std::string pname :
       {"UM", "CT", "DICER", "DICER-noBW", "DICER+MBA"}) {
    const auto pol = policy::make_policy(pname);
    const auto res = harness::run_consolidation(hp, be, *pol, config);
    const double norm = res.hp_ipc / hp_alone;
    const bool met = norm >= slo;
    const double efu = metrics::effective_utilisation(
        res.ipc_pairs(hp_alone, be_alone));
    table.add_row({pname, util::fmt_fixed(norm, 3), met ? "yes" : "NO",
                   util::fmt_fixed(res.be_ipc_mean / be_alone, 3),
                   util::fmt_fixed(efu, 3),
                   util::fmt_fixed(metrics::suci(met, efu, 1.0), 3),
                   util::fmt_fixed(res.avg_link_utilisation, 3)});
  }
  table.print();
  return 0;
}

int main(int argc, char** argv) {
  // One-line "program: error: ..." + non-zero exit for bad flag values.
  return dicer::util::cli_main_guard(argv[0], [&] { return run(argc, argv); });
}
