// fleet_top — a terminal dashboard over the fleet simulation: per-epoch
// EFU / SLO sparklines, the worst-K machines by HP slowdown, and an
// SRE-style error-budget burn-rate alert line.
//
//   ./fleet_top [--machines 64] [--epochs 30] [--cores 6] [...]
//               [--top 5] [--window 48] [--burn-window 5]
//               [--slo-budget 0.05] [--burn-alert 2.0]
//               [--refresh-ms 0] [--plain]
//
// Shares every fleet-shape flag with fleet_sim (--machines, --policy,
// --placement, --arrival-rate, --seed, --jobs, ...; see
// examples/fleet_common.hpp). On a TTY each epoch repaints the screen in
// place (ANSI home+clear); --plain (or a non-TTY stdout, e.g. CI logs)
// appends frames instead. --refresh-ms throttles the repaint so a human
// can watch a fast simulation.
//
// The alert fires while
//   mean(occupied SLO-violation rate over --burn-window epochs)
//     >= --burn-alert * --slo-budget
// i.e. the fleet is burning its error budget at --burn-alert times the
// sustainable pace.
#include <unistd.h>

#include <chrono>
#include <iostream>
#include <thread>

#include "fleet_common.hpp"
#include "fleet/cluster.hpp"
#include "fleet/dashboard.hpp"
#include "util/cli.hpp"

static int run(int argc, char** argv) {
  using namespace dicer;

  const util::CliArgs args(argc, argv);
  const auto epochs = static_cast<std::uint64_t>(args.get_int("epochs", 30));
  const auto refresh_ms = args.get_int("refresh-ms", 0);

  const sim::AppCatalog catalog = examples::catalog_from(args);
  examples::FleetEnv env(args);
  fleet::FleetConfig fc = examples::fleet_config_from(args);

  const bool tty = isatty(fileno(stdout)) != 0;
  fleet::DashboardConfig dc;
  dc.top_k = static_cast<unsigned>(args.get_int("top", 5));
  dc.history = static_cast<unsigned>(args.get_int("window", 48));
  dc.burn_window = static_cast<unsigned>(args.get_int("burn-window", 5));
  dc.slo_budget = args.get_double("slo-budget", 0.05);
  dc.burn_alert = args.get_double("burn-alert", 2.0);
  dc.ansi = tty && !args.get_bool("plain", false);

  fleet::Cluster cluster(fc, catalog);
  fleet::Dashboard dash(dc);

  for (std::uint64_t e = 0; e < epochs; ++e) {
    const fleet::EpochMetrics m = cluster.step_epoch();
    const std::string frame = dash.render(m, cluster.last_epoch_stats());
    if (dc.ansi) std::cout << "\x1b[H\x1b[2J";  // home + clear
    std::cout << frame;
    if (!dc.ansi) std::cout << '\n';  // frame separator when appending
    std::cout.flush();
    if (refresh_ms > 0) {
      std::this_thread::sleep_for(std::chrono::milliseconds(refresh_ms));
    }
  }
  std::cout << "done: " << epochs << " epochs, burn "
            << dash.burn_rate() << "x, alert epochs "
            << dash.alerts_fired() << "\n";
  return 0;
}

int main(int argc, char** argv) {
  return dicer::util::cli_main_guard(argv[0], [&] { return run(argc, argv); });
}
