// Fleet-scale consolidation: a datacenter of DICER machines under tenant
// churn, driven by a pluggable placement engine.
//
//   ./fleet_sim [--machines 500] [--epochs 20] [--placement mrc]
//               [--policy DICER] [--cores 10] [--arrival-rate 40]
//               [--mean-lifetime 8] [--slo 0.9] [--seed 42] [--jobs 0]
//               [--catalog default|trace] [--csv fleet.csv]
//               [--trace fleet.jsonl] [--compare]
//
// Emits one CSV row per epoch (stdout, or --csv FILE) with the fleet
// aggregates: tenant count, arrivals/departures/rejections/migrations,
// fleet EFU, mean HP QoS, SLO-violation rate, mean link utilisation.
// Same seed + config => byte-identical CSV at any --jobs.
//
// --compare re-runs the identical churn sequence under every placement
// engine and prints a mean-EFU scoreboard — the "does MRC-aware placement
// beat random?" answer in one table.
#include <fstream>
#include <iostream>
#include <ostream>

#include "fleet/cluster.hpp"
#include "sim/core/trace_apps.hpp"
#include "util/cli.hpp"
#include "util/csv.hpp"
#include "util/log.hpp"
#include "util/table.hpp"
#include "util/trace.hpp"

namespace {

dicer::fleet::FleetConfig config_from(const dicer::util::CliArgs& args) {
  dicer::fleet::FleetConfig fc;
  fc.num_machines = static_cast<unsigned>(args.get_int("machines", 500));
  fc.cores_used = static_cast<unsigned>(args.get_int("cores", 10));
  fc.policy = args.get_or("policy", "DICER");
  fc.placement = args.get_or("placement", "mrc");
  fc.epoch_sec = args.get_double("epoch", 1.0);
  fc.slo_norm = args.get_double("slo", 0.90);
  fc.migrate_after =
      static_cast<unsigned>(args.get_int("migrate-after", 3));
  fc.seed = static_cast<std::uint64_t>(args.get_int("seed", 42));
  fc.jobs = static_cast<unsigned>(args.get_int("jobs", 0));
  // Default churn: ~40 arrivals/s across the fleet with ~8 s lifetimes
  // holds a 500-machine fleet around 320 concurrent tenants — busy enough
  // that placement quality shows, loose enough that nothing is rejected
  // wholesale.
  fc.churn.arrival_rate_per_sec = args.get_double("arrival-rate", 40.0);
  fc.churn.mean_lifetime_sec = args.get_double("mean-lifetime", 8.0);
  fc.churn.seed = fc.seed + 1;
  return fc;
}

}  // namespace

static int run(int argc, char** argv) {
  using namespace dicer;

  const util::CliArgs args(argc, argv);
  const auto epochs = static_cast<std::uint64_t>(args.get_int("epochs", 20));
  const std::string catalog_name = args.get_or("catalog", "default");
  const std::string csv_path = args.get_or("csv", "");
  const std::string trace_path = args.get_or("trace", "");

  if (catalog_name != "default" && catalog_name != "trace") {
    throw util::CliError("invalid value for --catalog: '" + catalog_name +
                         "' (expected default or trace)");
  }
  const sim::AppCatalog catalog = catalog_name == "trace"
                                      ? sim::trace_augmented_catalog()
                                      : sim::AppCatalog();

  fleet::FleetConfig fc = config_from(args);

  std::shared_ptr<trace::Sink> sink;
  if (!trace_path.empty()) {
    sink = trace::make_file_sink(trace_path);
    trace::Tracer::global().add_sink(sink);
  }

  if (args.get_bool("compare", false)) {
    // Same churn + same fleet, one run per engine: the placement engine is
    // the only variable.
    util::TextTable table;
    table.set_header({"placement", "mean EFU", "HP norm", "rejected",
                      "migrations", "SLO viol rate"});
    for (const auto& name : fleet::known_placements()) {
      fc.placement = name;
      fleet::Cluster cluster(fc, catalog);
      const auto rows = cluster.run(epochs);
      std::uint64_t rejected = 0, migrations = 0;
      double hp_norm = 0.0, viol = 0.0;
      for (const auto& r : rows) {
        rejected += r.rejected;
        migrations += r.migrations;
        hp_norm += r.hp_norm_mean;
        viol += r.slo_violation_rate;
      }
      const auto n = static_cast<double>(rows.size());
      table.add_row({name, util::fmt_fixed(fleet::Cluster::mean_efu(rows), 4),
                     util::fmt_fixed(hp_norm / n, 4),
                     std::to_string(rejected), std::to_string(migrations),
                     util::fmt_fixed(viol / n, 4)});
    }
    std::cout << "Fleet of " << fc.num_machines << " machines, " << epochs
              << " epochs, " << fc.policy << " policy:\n\n";
    table.print();
    if (sink) trace::Tracer::global().remove_sink(sink);
    return 0;
  }

  fleet::Cluster cluster(fc, catalog);

  std::ofstream file;
  if (!csv_path.empty()) {
    file.open(csv_path);
    if (!file) {
      throw std::runtime_error("cannot open --csv file '" + csv_path + "'");
    }
  }
  std::ostream& out = csv_path.empty() ? std::cout : file;

  out << fleet::epoch_csv_header() << '\n';
  std::vector<fleet::EpochMetrics> rows;
  rows.reserve(epochs);
  for (std::uint64_t e = 0; e < epochs; ++e) {
    rows.push_back(cluster.step_epoch());
    out << fleet::epoch_csv_row(rows.back()) << '\n';
  }

  if (!csv_path.empty()) {
    std::cout << "wrote " << epochs << " epochs to " << csv_path << '\n';
  }
  std::cout << "fleet: " << fc.num_machines << " machines ("
            << fc.placement << " placement), mean EFU "
            << util::fmt_fixed(fleet::Cluster::mean_efu(rows), 4) << ", "
            << cluster.tenants_running() << " tenants running, "
            << cluster.placement_log().size() << " placement decisions\n";
  if (sink) trace::Tracer::global().remove_sink(sink);
  return 0;
}

int main(int argc, char** argv) {
  // One-line "program: error: ..." + non-zero exit for bad flag values.
  return dicer::util::cli_main_guard(argv[0], [&] { return run(argc, argv); });
}
