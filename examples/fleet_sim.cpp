// Fleet-scale consolidation: a datacenter of DICER machines under tenant
// churn, driven by a pluggable placement engine.
//
//   ./fleet_sim [--machines 500] [--epochs 20] [--placement mrc]
//               [--policy DICER] [--cores 10] [--arrival-rate 40]
//               [--mean-lifetime 8] [--slo 0.9] [--seed 42] [--jobs 0]
//               [--cp-jobs 0] [--parallel-cp true] [--p2c-d 5]
//               [--catalog default|trace] [--csv fleet.csv]
//               [--metrics-out metrics.prom] [--metrics-jsonl epochs.jsonl]
//               [--trace fleet.jsonl] [--log-level info] [--profile]
//               [--compare]
//
// --cp-jobs shards the control plane's placement scoring (0 = follow
// --jobs) and --parallel-cp=false (or DICER_NO_PARALLEL_CP=1) forces the
// serial scorer; like --jobs, pure speed knobs — outputs are
// byte-identical either way. --p2c-d sets the mrc-p2c engine's
// power-of-d-choices fan-out (>= 1).
//
// Emits one CSV row per epoch (stdout, or --csv FILE) with the fleet
// aggregates: tenant count, arrivals/departures/rejections/migrations,
// fleet EFU, mean HP QoS, SLO-violation rate, mean link utilisation, plus
// the EFU / HP-slowdown tail percentiles. Same seed + config =>
// byte-identical CSV at any --jobs.
//
// --metrics-out writes the end-of-run telemetry registry (fleet
// distributions, actuation counters, solver stats) in Prometheus text
// format, atomically; --metrics-jsonl writes the per-epoch rows as a JSONL
// time series. Both exports inherit the CSV's determinism contract.
//
// --compare re-runs the identical churn sequence under every placement
// engine and prints a mean-EFU-vs-cost scoreboard — the "does MRC-aware
// placement beat random, and what does each decision cost?" answer in one
// table (the wall-clock column is the one non-deterministic cell).
#include <chrono>
#include <fstream>
#include <iostream>
#include <ostream>

#include "fleet_common.hpp"
#include "fleet/cluster.hpp"
#include "telemetry/exposition.hpp"
#include "telemetry/registry.hpp"
#include "telemetry/trace_counter_sink.hpp"
#include "util/cli.hpp"
#include "util/csv.hpp"
#include "util/table.hpp"

static int run(int argc, char** argv) {
  using namespace dicer;

  const util::CliArgs args(argc, argv);
  const auto epochs = static_cast<std::uint64_t>(args.get_int("epochs", 20));
  const std::string csv_path = args.get_or("csv", "");
  const std::string metrics_path = args.get_or("metrics-out", "");
  const std::string jsonl_path = args.get_or("metrics-jsonl", "");

  const sim::AppCatalog catalog = examples::catalog_from(args);
  examples::FleetEnv env(args);
  fleet::FleetConfig fc = examples::fleet_config_from(args);

  if (args.get_bool("compare", false)) {
    // Same churn + same fleet, one run per engine: the placement engine is
    // the only variable.
    util::TextTable table;
    table.set_header({"placement", "mean EFU", "HP norm", "rejected",
                      "migrations", "SLO viol rate", "wall ms/epoch"});
    for (const auto& name : fleet::known_placements()) {
      fc.placement = name;
      fleet::Cluster cluster(fc, catalog);
      const auto t0 = std::chrono::steady_clock::now();
      const auto rows = cluster.run(epochs);
      const double wall_ms =
          std::chrono::duration<double, std::milli>(
              std::chrono::steady_clock::now() - t0)
              .count();
      std::uint64_t rejected = 0, migrations = 0;
      double hp_norm = 0.0, viol = 0.0;
      for (const auto& r : rows) {
        rejected += r.rejected;
        migrations += r.migrations;
        hp_norm += r.hp_norm_mean;
        viol += r.slo_violation_rate;
      }
      const auto n = static_cast<double>(rows.size());
      table.add_row({name, util::fmt_fixed(fleet::Cluster::mean_efu(rows), 4),
                     util::fmt_fixed(hp_norm / n, 4),
                     std::to_string(rejected), std::to_string(migrations),
                     util::fmt_fixed(viol / n, 4),
                     util::fmt_fixed(wall_ms / n, 2)});
    }
    std::cout << "Fleet of " << fc.num_machines << " machines, " << epochs
              << " epochs, " << fc.policy << " policy:\n\n";
    table.print();
    return 0;
  }

  // A run-local registry keeps exports self-contained; the trace-counter
  // sink turns the policies' existing event emission (allocations,
  // sampling passes, donations, resets, placements, migrations) into
  // actuation counters without touching the policy code.
  telemetry::Registry registry;
  auto counter_sink =
      std::make_shared<telemetry::TraceCounterSink>(registry);
  trace::Tracer::global().add_sink(counter_sink);
  fc.metrics = &registry;

  fleet::Cluster cluster(fc, catalog);

  std::ofstream file;
  if (!csv_path.empty()) {
    file.open(csv_path);
    if (!file) {
      throw std::runtime_error("cannot open --csv file '" + csv_path + "'");
    }
  }
  std::ostream& out = csv_path.empty() ? std::cout : file;

  std::ofstream jsonl;
  if (!jsonl_path.empty()) {
    jsonl.open(jsonl_path);
    if (!jsonl) {
      throw std::runtime_error("cannot open --metrics-jsonl file '" +
                               jsonl_path + "'");
    }
  }

  out << fleet::epoch_csv_header() << '\n';
  std::vector<fleet::EpochMetrics> rows;
  rows.reserve(epochs);
  for (std::uint64_t e = 0; e < epochs; ++e) {
    rows.push_back(cluster.step_epoch());
    out << fleet::epoch_csv_row(rows.back()) << '\n';
    if (jsonl.is_open()) {
      jsonl << fleet::epoch_jsonl_row(rows.back()) << '\n';
    }
  }
  trace::Tracer::global().remove_sink(counter_sink);

  if (!metrics_path.empty()) {
    telemetry::write_prometheus(registry, metrics_path);
    std::cout << "wrote " << registry.size() << " metrics to "
              << metrics_path << '\n';
  }
  if (!jsonl_path.empty()) {
    std::cout << "wrote " << epochs << " epoch rows to " << jsonl_path
              << '\n';
  }
  if (!csv_path.empty()) {
    std::cout << "wrote " << epochs << " epochs to " << csv_path << '\n';
  }
  std::cout << "fleet: " << fc.num_machines << " machines ("
            << fc.placement << " placement), mean EFU "
            << util::fmt_fixed(fleet::Cluster::mean_efu(rows), 4) << ", "
            << cluster.tenants_running() << " tenants running, "
            << cluster.placement_log().size() << " placement decisions\n";
  return 0;
}

int main(int argc, char** argv) {
  // One-line "program: error: ..." + non-zero exit for bad flag values.
  return dicer::util::cli_main_guard(argv[0], [&] { return run(argc, argv); });
}
