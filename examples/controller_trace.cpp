// Controller trace: watch DICER think.
//
// Runs one consolidation and prints, for every monitoring period, what the
// controller measured (HP IPC, HP bandwidth, total bandwidth) and what it
// did (allocation, samplings, resets) — the timeline behind Listings 1-3.
//
//   ./controller_trace [--hp GemsFDTD1] [--be gcc_base3] [--cores 10]
//                      [--seconds 40]
#include <cstdio>
#include <iostream>

#include "policy/dicer.hpp"
#include "rdt/capability.hpp"
#include "sim/core/catalog.hpp"
#include "util/cli.hpp"

static int run(int argc, char** argv) {
  using namespace dicer;

  const util::CliArgs args(argc, argv);
  const std::string hp_name = args.get_or("hp", "GemsFDTD1");
  const std::string be_name = args.get_or("be", "gcc_base3");
  const auto cores = static_cast<unsigned>(args.get_int("cores", 10));
  const double seconds = args.get_double("seconds", 40.0);

  const auto& catalog = sim::default_catalog();
  sim::Machine machine{sim::MachineConfig{}};
  const auto cap = rdt::Capability::probe(machine);
  rdt::CatController cat(machine, cap);
  rdt::Monitor monitor(machine, cap);

  policy::PolicyContext ctx;
  ctx.machine = &machine;
  ctx.cat = &cat;
  ctx.monitor = &monitor;
  ctx.hp_core = 0;
  machine.attach(0, &catalog.by_name(hp_name));
  for (unsigned c = 1; c < cores; ++c) {
    ctx.be_cores.push_back(c);
    machine.attach(c, &catalog.by_name(be_name));
  }

  policy::Dicer dicer;
  dicer.setup(ctx);

  std::cout << "DICER trace: HP=" << hp_name << " + " << (cores - 1) << "x "
            << be_name << " (BW threshold "
            << dicer.config().membw_threshold_bytes_per_sec * 8 / 1e9
            << " Gbps)\n\n";
  std::printf("%8s %8s %10s %10s %10s %6s %6s %s\n", "t(s)", "HP ways",
              "HP IPC", "HP GB/s", "tot GB/s", "smpl", "reset", "class");

  // Wrap the control loop so we can print between periods. The monitor's
  // state belongs to the policy, so we read the machine's counters
  // directly for display.
  double last_instr = 0.0, last_cycles = 0.0, last_hp_bytes = 0.0;
  double last_total_bytes = 0.0, last_t = 0.0;
  while (machine.time_sec() < seconds) {
    machine.run_for(dicer.interval_sec());
    dicer.act(ctx);

    const auto& hp_tel = machine.telemetry(0);
    double total_bytes = 0.0;
    for (unsigned c = 0; c < cores; ++c) {
      total_bytes += machine.telemetry(c).mem_bytes;
    }
    const double dt = machine.time_sec() - last_t;
    const double ipc = (hp_tel.instructions - last_instr) /
                       (hp_tel.active_cycles - last_cycles);
    const double hp_gbs = (hp_tel.mem_bytes - last_hp_bytes) / dt / 1e9;
    const double tot_gbs = (total_bytes - last_total_bytes) / dt / 1e9;
    std::printf("%8.2f %8u %10.3f %10.2f %10.2f %6llu %6llu %s\n",
                machine.time_sec(), dicer.hp_ways(), ipc, hp_gbs, tot_gbs,
                static_cast<unsigned long long>(dicer.stats().samplings),
                static_cast<unsigned long long>(dicer.stats().phase_resets +
                                                dicer.stats().perf_resets),
                dicer.ct_favoured() ? "CT-F" : "CT-T");
    last_instr = hp_tel.instructions;
    last_cycles = hp_tel.active_cycles;
    last_hp_bytes = hp_tel.mem_bytes;
    last_total_bytes = total_bytes;
    last_t = machine.time_sec();
  }

  const auto& st = dicer.stats();
  std::cout << "\nSummary: " << st.periods << " control actions, "
            << st.samplings << " samplings (" << st.sampling_steps
            << " settle intervals), " << st.way_donations
            << " way donations, " << st.phase_resets << " phase resets, "
            << st.perf_resets << " performance resets, " << st.rollbacks
            << " rollbacks.\n";
  return 0;
}

int main(int argc, char** argv) {
  // One-line "program: error: ..." + non-zero exit for bad flag values.
  return dicer::util::cli_main_guard(argv[0], [&] { return run(argc, argv); });
}
