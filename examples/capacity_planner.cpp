// Capacity planner: the provider-side question the paper motivates — given
// a High-Priority application with an SLO, how many Best-Effort instances
// can be co-located under each policy before the SLO breaks, and what
// utilisation does that buy?
//
//   ./capacity_planner [--hp Xalan1] [--be gcc_base3] [--slo 0.9]
#include <iostream>

#include "harness/consolidation.hpp"
#include "harness/solo.hpp"
#include "metrics/metrics.hpp"
#include "policy/factory.hpp"
#include "sim/core/catalog.hpp"
#include "util/cli.hpp"
#include "util/csv.hpp"
#include "util/table.hpp"

static int run(int argc, char** argv) {
  using namespace dicer;

  const util::CliArgs args(argc, argv);
  const std::string hp_name = args.get_or("hp", "Xalan1");
  const std::string be_name = args.get_or("be", "gcc_base3");
  const double slo = args.get_double("slo", 0.90);

  const auto& catalog = sim::default_catalog();
  const auto& hp = catalog.by_name(hp_name);
  const auto& be = catalog.by_name(be_name);

  harness::ConsolidationConfig config;
  const double hp_alone =
      harness::solo_steady_state(hp, config.machine.llc.ways, config.machine)
          .ipc;
  const double be_alone =
      harness::solo_steady_state(be, config.machine.llc.ways, config.machine)
          .ipc;

  std::cout << "Capacity plan: HP " << hp_name << " (SLO " << slo * 100
            << "% of IPC " << util::fmt(hp_alone) << "), BE " << be_name
            << "\n\n";

  util::TextTable table;
  table.set_header({"policy", "max BEs", "HP norm @max", "EFU @max",
                    "BE throughput (norm-sum)"});
  for (const std::string pname : {"UM", "CT", "DICER"}) {
    unsigned best_bes = 0;
    double best_norm = 1.0, best_efu = 1.0, best_tp = 0.0;
    for (unsigned cores = 2; cores <= config.machine.num_cores; ++cores) {
      const auto pol = policy::make_policy(pname);
      harness::ConsolidationConfig cc = config;
      cc.cores_used = cores;
      const auto res = harness::run_consolidation(hp, be, *pol, cc);
      const double norm = res.hp_ipc / hp_alone;
      if (norm < slo) break;  // one more BE would violate the SLA
      best_bes = cores - 1;
      best_norm = norm;
      best_efu = metrics::effective_utilisation(
          res.ipc_pairs(hp_alone, be_alone));
      best_tp = static_cast<double>(res.be_ipcs.size()) *
                (res.be_ipc_mean / be_alone);
    }
    if (best_bes == 0) {
      table.add_row({pname, "0 (SLO breaks at 1 BE)", "-", "-", "-"});
    } else {
      table.add_row(pname + "  " + std::to_string(best_bes) + " BEs",
                    {best_norm, best_efu, best_tp}, 3);
    }
  }
  table.print();

  std::cout << "\n'max BEs' is the largest co-location that still meets the "
               "SLO;\nBE throughput sums the normalised IPC of all BE "
               "instances at that point.\n";
  return 0;
}

int main(int argc, char** argv) {
  // One-line "program: error: ..." + non-zero exit for bad flag values.
  return dicer::util::cli_main_guard(argv[0], [&] { return run(argc, argv); });
}
