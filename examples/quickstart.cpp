// Quickstart: consolidate one HP application with nine BE instances under
// the three co-location policies from the paper (UM, CT, DICER) and compare
// HP QoS and effective system utilisation.
//
//   ./quickstart [--hp milc1] [--be gcc_base3] [--cores 10]
//                [--trace-apps] [--profile-cache PATH] [--profile]
//
// --trace-apps augments the catalog with the trace-derived apps
// (trace_stream1, trace_wset1, trace_bimodal1, trace_mix1): each is
// profiled from its address stream with the single-pass sampled MRC
// profiler, so they are usable as --hp/--be like any analytic app.
// --profile-cache persists the profiled curves across runs; --profile
// prints the scoped-timer/counter table (incl. the profiler.* group)
// to stderr on exit.
#include <cstdio>
#include <iostream>

#include "harness/consolidation.hpp"
#include "harness/solo.hpp"
#include "metrics/metrics.hpp"
#include "policy/factory.hpp"
#include "sim/core/catalog.hpp"
#include "sim/core/trace_apps.hpp"
#include "util/cli.hpp"
#include "util/table.hpp"
#include "util/timer.hpp"

static int run(int argc, char** argv) {
  using namespace dicer;

  const util::CliArgs args(argc, argv);
  const std::string hp_name = args.get_or("hp", "milc1");
  const std::string be_name = args.get_or("be", "gcc_base3");
  const auto cores = static_cast<unsigned>(args.get_int("cores", 10));

  const bool trace_apps = args.has("trace-apps");
  const sim::AppCatalog catalog =
      trace_apps
          ? sim::trace_augmented_catalog(args.get_or("profile-cache", ""))
          : sim::default_catalog();
  const auto& hp = catalog.by_name(hp_name);
  const auto& be = catalog.by_name(be_name);

  harness::ConsolidationConfig config;
  config.cores_used = cores;

  // Solo references: every QoS metric is normalised to running alone with
  // the full LLC (paper §4.1).
  const auto hp_alone =
      harness::solo_steady_state(hp, config.machine.llc.ways, config.machine);
  const auto be_alone =
      harness::solo_steady_state(be, config.machine.llc.ways, config.machine);

  std::cout << "HP  " << hp.name << " (" << to_string(hp.app_class)
            << "): IPC alone = " << hp_alone.ipc << ", solo run "
            << hp_alone.time_sec << " s\n";
  std::cout << "BEs " << be.name << " x" << (cores - 1) << " ("
            << to_string(be.app_class)
            << "): IPC alone = " << be_alone.ipc << "\n\n";

  util::TextTable table;
  table.set_header({"policy", "HP IPC", "HP slowdown", "HP norm", "BE norm",
                    "EFU", "link rho", "window s"});
  for (const std::string name : {"UM", "CT", "DICER"}) {
    const auto policy = policy::make_policy(name);
    const auto res = harness::run_consolidation(hp, be, *policy, config);
    const auto pairs = res.ipc_pairs(hp_alone.ipc, be_alone.ipc);
    table.add_row(name,
                  {res.hp_ipc, metrics::slowdown(hp_alone.ipc, res.hp_ipc),
                   res.hp_ipc / hp_alone.ipc, res.be_ipc_mean / be_alone.ipc,
                   metrics::effective_utilisation(pairs),
                   res.avg_link_utilisation, res.window_sec},
                  3);
  }
  table.print();
  if (args.get_bool("profile", false)) {
    const std::string timers = trace::TimerRegistry::global().format();
    if (!timers.empty()) std::cerr << "\n" << timers;
  }
  return 0;
}

int main(int argc, char** argv) {
  // One-line "program: error: ..." + non-zero exit for bad flag values.
  return dicer::util::cli_main_guard(argv[0], [&] { return run(argc, argv); });
}
